//! Sequential-access memory timing.

use vmp_types::{Nanos, PageSize};

/// Block-transfer timing parameters of the main memory boards and bus.
///
/// The paper's prototype numbers: the first access to a memory board
/// takes 300 ns, each subsequent sequential longword less than 100 ns
/// (§2, "Sequential Memory Access"), and the VMEbus block-transfer mode
/// strobes successive words without re-arbitrating. These constants give
/// the bus times of Table 1 directly: 3.4/6.6/13.0 µs per page of
/// 128/256/512 bytes.
///
/// # Examples
///
/// ```
/// use vmp_mem::MemTimings;
/// use vmp_types::PageSize;
///
/// let t = MemTimings::default();
/// assert_eq!(t.page_transfer(PageSize::S512).as_micros_f64(), 13.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemTimings {
    /// Latency of the first longword of a transfer.
    pub first_word: Nanos,
    /// Latency of each subsequent sequential longword.
    pub next_word: Nanos,
}

impl Default for MemTimings {
    /// The paper's prototype values: 300 ns first word, 100 ns thereafter.
    fn default() -> Self {
        MemTimings { first_word: Nanos::from_ns(300), next_word: Nanos::from_ns(100) }
    }
}

impl MemTimings {
    /// Time to transfer `longwords` sequential 32-bit words.
    ///
    /// Returns zero for a zero-length transfer.
    pub fn block_transfer(&self, longwords: u64) -> Nanos {
        if longwords == 0 {
            Nanos::ZERO
        } else {
            self.first_word + self.next_word * (longwords - 1)
        }
    }

    /// Time to transfer one full cache page.
    pub fn page_transfer(&self, page: PageSize) -> Nanos {
        self.block_transfer(page.longwords())
    }

    /// Effective bandwidth of a one-page transfer, in megabytes/second.
    pub fn page_bandwidth_mbps(&self, page: PageSize) -> f64 {
        let t = self.page_transfer(page);
        page.bytes() as f64 / t.as_secs_f64() / 1e6
    }

    /// Time of a page transfer whose copier failed `failures` times
    /// before succeeding: each failed attempt occupies a full transfer
    /// slot (the copier detects the error only at the end of the block).
    /// `failures` is clamped to [`MAX_TRANSFER_RETRIES`] — the bounded
    /// retry budget of the copier path — so a transfer can never stretch
    /// without limit.
    pub fn page_transfer_with_retries(&self, page: PageSize, failures: u32) -> Nanos {
        let attempts = 1 + failures.min(MAX_TRANSFER_RETRIES);
        self.page_transfer(page) * u64::from(attempts)
    }
}

/// Hard bound on failed copier attempts absorbed per block transfer.
pub const MAX_TRANSFER_RETRIES: u32 = 8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table1_bus_times() {
        let t = MemTimings::default();
        assert_eq!(t.page_transfer(PageSize::S128).as_micros_f64(), 3.4);
        assert_eq!(t.page_transfer(PageSize::S256).as_micros_f64(), 6.6);
        assert_eq!(t.page_transfer(PageSize::S512).as_micros_f64(), 13.0);
    }

    #[test]
    fn zero_transfer_is_free() {
        assert_eq!(MemTimings::default().block_transfer(0), Nanos::ZERO);
        assert_eq!(MemTimings::default().block_transfer(1), Nanos::from_ns(300));
    }

    #[test]
    fn retried_transfers_scale_and_clamp() {
        let t = MemTimings::default();
        let one = t.page_transfer(PageSize::S256);
        assert_eq!(t.page_transfer_with_retries(PageSize::S256, 0), one);
        assert_eq!(t.page_transfer_with_retries(PageSize::S256, 2), one * 3);
        assert_eq!(
            t.page_transfer_with_retries(PageSize::S256, 1_000),
            one * u64::from(MAX_TRANSFER_RETRIES + 1),
            "runaway failure counts clamp to the retry budget"
        );
    }

    #[test]
    fn approaches_40_mbps_for_large_pages() {
        // The paper quotes ≈40 MB/s for the block copier; asymptotically
        // 4 bytes / 100 ns = 40 MB/s, with the 300 ns first-word cost
        // amortized over larger pages.
        let t = MemTimings::default();
        let bw512 = t.page_bandwidth_mbps(PageSize::S512);
        assert!(bw512 > 35.0 && bw512 < 40.0, "bw {bw512}");
        let bw128 = t.page_bandwidth_mbps(PageSize::S128);
        assert!(bw128 < bw512, "larger pages amortize the first access");
    }
}
