//! The shared main memory: an array of cache-page frames.

use vmp_types::{FrameNum, Nanos, PageSize, PhysAddr};

use crate::MemTimings;

/// Byte-accurate shared main memory, viewed as a sequence of *cache page
/// frames* (paper §3.1): frame `k` holds bytes
/// `k·page_size .. (k+1)·page_size`.
///
/// Main memory is only modified by `write-back` bus transactions and DMA
/// writes, which is what makes the bus monitor's abort-after-a-few-words
/// behaviour safe (paper §3.2); the simulator preserves that property by
/// funnelling all mutation through [`MainMemory::write`].
///
/// # Examples
///
/// ```
/// use vmp_mem::MainMemory;
/// use vmp_types::{FrameNum, PageSize, PhysAddr};
///
/// let mut mem = MainMemory::new(PageSize::S128, 1024);
/// assert_eq!(mem.frames(), 8);
/// mem.write_u32(PhysAddr::new(0x84), 0xdeadbeef);
/// assert_eq!(mem.read_u32(PhysAddr::new(0x84)), 0xdeadbeef);
/// ```
#[derive(Debug, Clone)]
pub struct MainMemory {
    page_size: PageSize,
    data: Vec<u8>,
    timings: MemTimings,
}

impl MainMemory {
    /// Creates zeroed memory of `total_bytes`, rounded up to whole frames.
    pub fn new(page_size: PageSize, total_bytes: u64) -> Self {
        let frames = page_size.frames_in(total_bytes);
        let data = vec![0u8; (frames * page_size.bytes()) as usize];
        MainMemory { page_size, data, timings: MemTimings::default() }
    }

    /// Creates memory with explicit transfer timings.
    pub fn with_timings(page_size: PageSize, total_bytes: u64, timings: MemTimings) -> Self {
        let mut m = MainMemory::new(page_size, total_bytes);
        m.timings = timings;
        m
    }

    /// The frame size (= cache page size).
    pub fn page_size(&self) -> PageSize {
        self.page_size
    }

    /// Number of frames.
    pub fn frames(&self) -> u64 {
        self.data.len() as u64 / self.page_size.bytes()
    }

    /// Total bytes.
    pub fn total_bytes(&self) -> u64 {
        self.data.len() as u64
    }

    /// The transfer timing model.
    pub fn timings(&self) -> &MemTimings {
        &self.timings
    }

    /// Time for a one-page block transfer to or from this memory.
    pub fn page_transfer_time(&self) -> Nanos {
        self.timings.page_transfer(self.page_size)
    }

    fn frame_range(&self, frame: FrameNum, offset: usize, len: usize) -> std::ops::Range<usize> {
        let page = self.page_size.bytes() as usize;
        assert!(frame.raw() < self.frames(), "frame {frame} out of range");
        assert!(offset + len <= page, "access crosses frame boundary");
        let base = frame.index() * page;
        base + offset..base + offset + len
    }

    /// Reads `len` bytes at `offset` within a frame.
    ///
    /// # Panics
    ///
    /// Panics if the frame is out of range or the access crosses the
    /// frame boundary.
    pub fn read(&self, frame: FrameNum, offset: usize, len: usize) -> &[u8] {
        &self.data[self.frame_range(frame, offset, len)]
    }

    /// Returns a copy of one whole frame (the unit a block transfer moves).
    pub fn read_frame(&self, frame: FrameNum) -> Vec<u8> {
        self.read(frame, 0, self.page_size.bytes() as usize).to_vec()
    }

    /// Writes bytes at `offset` within a frame.
    ///
    /// # Panics
    ///
    /// Panics if the frame is out of range or the access crosses the
    /// frame boundary.
    pub fn write(&mut self, frame: FrameNum, offset: usize, bytes: &[u8]) {
        let r = self.frame_range(frame, offset, bytes.len());
        self.data[r].copy_from_slice(bytes);
    }

    /// Replaces one whole frame (a write-back block transfer).
    ///
    /// # Panics
    ///
    /// Panics unless `bytes` is exactly one frame long.
    pub fn write_frame(&mut self, frame: FrameNum, bytes: &[u8]) {
        assert_eq!(bytes.len() as u64, self.page_size.bytes(), "write_frame needs a full frame");
        self.write(frame, 0, bytes);
    }

    /// Reads a little-endian `u32` at a physical address (word-aligned).
    ///
    /// # Panics
    ///
    /// Panics if the address is unaligned or out of range.
    pub fn read_u32(&self, pa: PhysAddr) -> u32 {
        assert_eq!(pa.raw() % 4, 0, "unaligned word read at {pa}");
        let frame = self.page_size.frame_of(pa);
        let offset = self.page_size.offset_of(pa.raw()) as usize;
        let b = self.read(frame, offset, 4);
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    }

    /// Writes a little-endian `u32` at a physical address (word-aligned).
    ///
    /// # Panics
    ///
    /// Panics if the address is unaligned or out of range.
    pub fn write_u32(&mut self, pa: PhysAddr, value: u32) {
        assert_eq!(pa.raw() % 4, 0, "unaligned word write at {pa}");
        let frame = self.page_size.frame_of(pa);
        let offset = self.page_size.offset_of(pa.raw()) as usize;
        self.write(frame, offset, &value.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_up_to_whole_frames() {
        let m = MainMemory::new(PageSize::S256, 1000);
        assert_eq!(m.frames(), 4);
        assert_eq!(m.total_bytes(), 1024);
    }

    #[test]
    fn frame_read_write_roundtrip() {
        let mut m = MainMemory::new(PageSize::S128, 1024);
        let page: Vec<u8> = (0..128).map(|i| i as u8).collect();
        m.write_frame(FrameNum::new(3), &page);
        assert_eq!(m.read_frame(FrameNum::new(3)), page);
        assert_eq!(m.read_frame(FrameNum::new(2)), vec![0u8; 128]);
    }

    #[test]
    fn word_access_little_endian() {
        let mut m = MainMemory::new(PageSize::S128, 1024);
        m.write_u32(PhysAddr::new(0x80), 0x0102_0304);
        assert_eq!(m.read(FrameNum::new(1), 0, 4), &[0x04, 0x03, 0x02, 0x01]);
        assert_eq!(m.read_u32(PhysAddr::new(0x80)), 0x0102_0304);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_frame() {
        let m = MainMemory::new(PageSize::S128, 256);
        let _ = m.read(FrameNum::new(2), 0, 1);
    }

    #[test]
    #[should_panic(expected = "crosses frame boundary")]
    fn rejects_cross_frame_access() {
        let mut m = MainMemory::new(PageSize::S128, 256);
        m.write(FrameNum::new(0), 126, &[0, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn rejects_unaligned_word() {
        let m = MainMemory::new(PageSize::S128, 256);
        let _ = m.read_u32(PhysAddr::new(2));
    }

    #[test]
    fn transfer_time_uses_timings() {
        let m = MainMemory::new(PageSize::S256, 1024);
        assert_eq!(m.page_transfer_time().as_micros_f64(), 6.6);
        let fast = MainMemory::with_timings(
            PageSize::S256,
            1024,
            MemTimings { first_word: Nanos::from_ns(100), next_word: Nanos::from_ns(50) },
        );
        assert_eq!(fast.page_transfer_time().as_ns(), 100 + 63 * 50);
        assert_eq!(fast.timings().next_word, Nanos::from_ns(50));
    }
}
