//! Whole-system scenarios across crates: mixed trace + synchronization
//! workloads, scaling, and baseline consistency.

use vmp::baselines::{Access, CoherenceModel, OwnershipSystem, SnoopySystem};
use vmp::machine::workloads::{LockDiscipline, LockWorker, SweepWorker};
use vmp::machine::{Machine, MachineConfig, TraceProgram};
use vmp::trace::synth::{AtumParams, AtumWorkload};
use vmp::types::{Asid, Nanos, PageSize, VirtAddr};

#[test]
fn mixed_workload_machine_stays_consistent() {
    let mut config = MachineConfig {
        processors: 3,
        memory_bytes: 2 * 1024 * 1024,
        max_time: Nanos::from_ms(60_000),
        ..MachineConfig::default()
    };
    config.cpu.page_fault = Nanos::from_us(10);
    let mut m = Machine::build(config).unwrap();

    // CPU 0: trace playback in its own space.
    m.set_asid(0, Asid::new(5)).unwrap();
    let refs = AtumWorkload::new(AtumParams::default(), 3).take(8_000).map(|mut r| {
        r.asid = Asid::new(5);
        r
    });
    m.set_program(0, TraceProgram::new(refs)).unwrap();

    // CPUs 1 and 2: locked counter in the shared default space.
    let lock = VirtAddr::new(0x1000);
    let counter = VirtAddr::new(0x2000);
    for cpu in 1..3 {
        m.set_program(
            cpu,
            LockWorker::new(
                LockDiscipline::Notify,
                lock,
                counter,
                10,
                Nanos::from_us(3),
                Nanos::from_us(4),
            ),
        )
        .unwrap();
    }

    m.run().unwrap();
    assert_eq!(m.peek_word(Asid::new(1), counter), Some(20));
    m.validate().unwrap();
}

#[test]
fn false_sharing_ping_pongs_large_pages() {
    // Two writers striding disjoint words of the SAME pages: with VMP's
    // large cache pages this is pure false sharing — ownership ping-pongs
    // even though no word is actually shared.
    let mut config = MachineConfig::small();
    config.processors = 2;
    config.validate_each_step = false;
    config.max_time = Nanos::from_ms(60_000);
    let page = config.cache.page_size().bytes();
    let mut m = Machine::build(config).unwrap();
    // CPU 0 writes even words, CPU 1 odd words of the same two pages.
    m.set_program(0, SweepWorker::new(VirtAddr::new(0x4000), 2 * page / 8, 8, 6, true)).unwrap();
    m.set_program(1, SweepWorker::new(VirtAddr::new(0x4004), 2 * page / 8, 8, 6, true)).unwrap();
    let report = m.run().unwrap();
    let invalidations: u64 = report.processors.iter().map(|p| p.invalidations).sum();
    assert!(
        invalidations > 10,
        "false sharing must ping-pong ownership, got {invalidations} invalidations"
    );
    m.validate().unwrap();
}

#[test]
fn baselines_agree_on_private_data_and_disagree_on_shared_writes() {
    // Purely private accesses: both protocols settle to zero steady-state
    // traffic. Shared writes: snoopy pays per write, ownership per
    // migration.
    let private: Vec<Access> = (0..1000)
        .map(|i| Access {
            cpu: (i % 2) as usize,
            addr: (i % 2) as u64 * 0x10000 + (i as u64 % 64) * 4,
            write: i % 3 == 0,
        })
        .collect();
    let mut snoopy = SnoopySystem::new(2, 16);
    let mut vmp = OwnershipSystem::new(2, PageSize::S256);
    for &a in &private {
        snoopy.access(a);
        vmp.access(a);
    }
    assert_eq!(snoopy.traffic().word_ops, 0);
    assert_eq!(vmp.traffic().invalidations, 0);

    let shared: Vec<Access> =
        (0..100).map(|i| Access { cpu: (i % 2) as usize, addr: 0, write: true }).collect();
    let mut snoopy = SnoopySystem::new(2, 16);
    let mut vmp = OwnershipSystem::new(2, PageSize::S256);
    for &a in &shared {
        snoopy.access(a);
        vmp.access(a);
    }
    assert!(snoopy.traffic().word_ops >= 98, "every shared write broadcasts");
    assert!(
        vmp.traffic().block_transfers >= 99,
        "alternating writers migrate the page every access"
    );
}

#[test]
fn scaling_degrades_gracefully() {
    // More processors on one bus: aggregate throughput rises, per-CPU
    // performance falls — no collapse, no deadlock.
    let run = |n: usize| {
        let mut config = MachineConfig {
            processors: n,
            memory_bytes: 4 * 1024 * 1024,
            max_time: Nanos::from_ms(60_000),
            ..MachineConfig::default()
        };
        config.cpu.page_fault = Nanos::ZERO;
        let mut m = Machine::build(config).unwrap();
        for cpu in 0..n {
            let asid = Asid::new(cpu as u8 + 1);
            m.set_asid(cpu, asid).unwrap();
            let refs = AtumWorkload::new(AtumParams::default(), cpu as u64).take(6_000).map(
                move |mut r| {
                    r.asid = asid;
                    r
                },
            );
            m.set_program(cpu, TraceProgram::new(refs)).unwrap();
        }
        let report = m.run().unwrap();
        m.validate().unwrap();
        let mean_perf: f64 =
            report.processors.iter().map(|p| p.performance()).sum::<f64>() / n as f64;
        (mean_perf, report.bus_utilization())
    };
    let (p1, b1) = run(1);
    let (p6, b6) = run(6);
    assert!(p6 <= p1 + 0.02, "per-cpu performance must not improve with contention");
    assert!(b6 > b1, "bus utilization must grow with processors");
    assert!(p6 > 0.05, "no collapse");
}
