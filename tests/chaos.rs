//! Chaos soak: hundreds of deterministic seeded fault plans against
//! workloads with schedule-independent final state.
//!
//! The fault-transparency contract under test: injected faults (spurious
//! aborts, dropped interrupt words, forced overflows, copier errors,
//! arbitration stalls) may change *when* things happen, never *what* the
//! machine computes. Every faulted run must therefore end with
//! `validate()` clean, the periodic audit silent, the liveness watchdog
//! silent, and the final memory words identical to a zero-fault
//! reference run of the same workload. A deliberately out-of-contract
//! plan must, conversely, demonstrably trip the watchdog.

use vmp::faults::{FaultPlan, FaultRates};
use vmp::machine::workloads::{LockDiscipline, LockWorker, SweepWorker};
use vmp::machine::{Machine, MachineConfig, MachineError, WatchdogConfig, WatchdogViolation};
use vmp::types::{Asid, Nanos, VirtAddr};
use vmp_sweep::{SweepJob, SweepPool};

/// Seeded fault plans per workload (the soak sweeps seeds `0..PLANS`).
const PLANS: u64 = 200;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Workload {
    /// Two CPUs writing fully disjoint page ranges: no sharing at all.
    DisjointSweeps,
    /// Two CPUs spinning on a test-and-set lock around a shared counter.
    SpinLock,
    /// The same counter under §5.4 notification locks (parks + notifies).
    NotifyLock,
    /// Two CPUs writing disjoint words of the *same* pages: pure false
    /// sharing, one writer per word, maximal ownership ping-pong.
    FalseSharing,
}

const WORKLOADS: [Workload; 4] =
    [Workload::DisjointSweeps, Workload::SpinLock, Workload::NotifyLock, Workload::FalseSharing];

fn build_machine(workload: Workload) -> Machine {
    let mut config = MachineConfig::small();
    // Per-step validation would dominate the soak; the periodic audit
    // and the final validate() carry the invariant checking instead.
    config.validate_each_step = false;
    config.audit_every = Some(64);
    config.watchdog = Some(WatchdogConfig::default());
    config.max_time = Nanos::from_ms(60_000);
    let page = config.cache.page_size().bytes();
    let mut m = Machine::build(config).unwrap();
    match workload {
        Workload::DisjointSweeps => {
            m.set_program(0, SweepWorker::new(VirtAddr::new(0x4000), 2 * page / 4, 4, 3, true))
                .unwrap();
            m.set_program(1, SweepWorker::new(VirtAddr::new(0x8000), 2 * page / 4, 4, 3, true))
                .unwrap();
        }
        Workload::SpinLock | Workload::NotifyLock => {
            let discipline = if workload == Workload::SpinLock {
                LockDiscipline::Spin
            } else {
                LockDiscipline::Notify
            };
            for cpu in 0..2 {
                m.set_program(
                    cpu,
                    LockWorker::new(
                        discipline,
                        VirtAddr::new(0x1000),
                        VirtAddr::new(0x2000),
                        8,
                        Nanos::from_us(2),
                        Nanos::from_us(3),
                    ),
                )
                .unwrap();
            }
        }
        Workload::FalseSharing => {
            m.set_program(0, SweepWorker::new(VirtAddr::new(0x4000), 2 * page / 8, 8, 3, true))
                .unwrap();
            m.set_program(1, SweepWorker::new(VirtAddr::new(0x4004), 2 * page / 8, 8, 3, true))
                .unwrap();
        }
    }
    m
}

/// Words whose final value must be schedule- and fault-independent.
fn probes(workload: Workload) -> Vec<VirtAddr> {
    match workload {
        Workload::DisjointSweeps => [0x4000u64, 0x4034, 0x40fc, 0x8000, 0x8034, 0x80fc]
            .iter()
            .map(|&a| VirtAddr::new(a))
            .collect(),
        Workload::SpinLock | Workload::NotifyLock => {
            vec![VirtAddr::new(0x1000), VirtAddr::new(0x2000)]
        }
        Workload::FalseSharing => [0x4000u64, 0x4004, 0x4040, 0x4044, 0x40f8, 0x40fc]
            .iter()
            .map(|&a| VirtAddr::new(a))
            .collect(),
    }
}

fn final_probe_words(m: &Machine, workload: Workload) -> Vec<Option<u32>> {
    probes(workload).iter().map(|&va| m.peek_word(Asid::new(1), va)).collect()
}

/// Outcome of one faulted run, compared against the oracle on the main
/// thread so failures name their seed.
struct Outcome {
    seed: u64,
    workload: Workload,
    error: Option<String>,
    validate: Result<(), String>,
    probes: Vec<Option<u32>>,
    faults_total: u64,
    dropped_words: u64,
    fifo_recoveries: u64,
}

fn run_faulted(workload: Workload, seed: u64) -> Outcome {
    let rates = if seed.is_multiple_of(2) { FaultRates::light() } else { FaultRates::heavy() };
    let mut m = build_machine(workload);
    m.install_fault_hook(FaultPlan::new(seed, rates));
    let error = match m.run() {
        Ok(_) => None,
        Err(e) => Some(e.to_string()),
    };
    let stats = *m.fault_stats();
    Outcome {
        seed,
        workload,
        error,
        validate: m.validate(),
        probes: final_probe_words(&m, workload),
        faults_total: stats.total(),
        dropped_words: stats.dropped_words,
        fifo_recoveries: (0..m.processors()).map(|c| m.cpu_stats(c).fifo_recoveries).sum(),
    }
}

#[test]
fn chaos_soak_faults_cost_time_never_correctness() {
    // Zero-fault oracle per workload: the final probe words every
    // faulted run must reproduce.
    let oracle: Vec<(Workload, Vec<Option<u32>>)> = WORKLOADS
        .iter()
        .map(|&w| {
            let mut m = build_machine(w);
            m.run().unwrap_or_else(|e| panic!("oracle run {w:?} failed: {e}"));
            m.validate().unwrap();
            assert_eq!(m.fault_stats().total(), 0, "oracle runs inject nothing");
            (w, final_probe_words(&m, w))
        })
        .collect();
    // Sanity: the lock oracles really counted 2 workers × 8 sections.
    for (w, words) in &oracle {
        if matches!(w, Workload::SpinLock | Workload::NotifyLock) {
            assert_eq!(words[1], Some(16), "{w:?} counter");
        }
    }

    let jobs: Vec<SweepJob<(Workload, u64)>> = WORKLOADS
        .iter()
        .flat_map(|&w| {
            (0..PLANS).map(move |seed| SweepJob::new(format!("{w:?}/{seed}"), (w, seed)))
        })
        .collect();
    let outcomes = SweepPool::new().run(jobs, |job| run_faulted(job.input.0, job.input.1));

    let mut faults_total = 0u64;
    let mut dropped_total = 0u64;
    let mut recoveries_total = 0u64;
    for o in &outcomes {
        let tag = format!("{:?} seed {}", o.workload, o.seed);
        assert!(o.error.is_none(), "{tag}: run failed: {:?}", o.error);
        assert!(o.validate.is_ok(), "{tag}: validate failed: {:?}", o.validate);
        let expected = &oracle.iter().find(|(w, _)| *w == o.workload).unwrap().1;
        assert_eq!(&o.probes, expected, "{tag}: final memory diverged from zero-fault oracle");
        faults_total += o.faults_total;
        dropped_total += o.dropped_words;
        recoveries_total += o.fifo_recoveries;
    }
    // The soak must actually exercise the machinery it certifies.
    assert!(faults_total > 10_000, "soak injected too few faults: {faults_total}");
    assert!(dropped_total > 100, "soak dropped too few words: {dropped_total}");
    assert!(recoveries_total > 100, "soak triggered too few recoveries: {recoveries_total}");
}

#[test]
fn same_seed_same_faulted_run() {
    // Determinism under faults: identical seed + workload → identical
    // elapsed time, stats and fault accounting.
    let run = || {
        let mut m = build_machine(Workload::FalseSharing);
        m.install_fault_hook(FaultPlan::new(17, FaultRates::heavy()));
        let report = m.run().unwrap();
        (report.elapsed, report.processors, *m.fault_stats())
    };
    assert_eq!(run(), run());
}

#[test]
fn placebo_plan_is_bit_identical_to_no_hook() {
    let bare = {
        let mut m = build_machine(Workload::SpinLock);
        let report = m.run().unwrap();
        (report.elapsed, report.processors)
    };
    let placebo = {
        let mut m = build_machine(Workload::SpinLock);
        m.install_fault_hook(FaultPlan::new(99, FaultRates::none()));
        let report = m.run().unwrap();
        assert_eq!(m.fault_stats().total(), 0);
        (report.elapsed, report.processors)
    };
    assert_eq!(bare, placebo, "a zero-rate plan must not perturb the machine");
}

#[test]
fn broken_plan_trips_the_watchdog() {
    // Recovery disabled by construction: every retryable transaction
    // aborts forever, so no retry can ever converge. The machine must
    // not spin silently — the watchdog has to call it.
    let mut m = build_machine(Workload::SpinLock);
    m.install_fault_hook(FaultPlan::broken(0));
    match m.run() {
        Err(MachineError::Watchdog(WatchdogViolation::RetryStreak { streak, limit, .. })) => {
            assert!(streak > limit, "reported streak must exceed the limit");
        }
        other => panic!("expected a retry-streak watchdog trip, got {other:?}"),
    }
}

#[test]
fn broken_plan_without_watchdog_hits_the_time_limit() {
    // The watchdog is opt-in: without it the same hostile plan just
    // burns simulated time until max_time — no panic, no livelock of
    // the host (every retry advances the clock).
    let mut config = MachineConfig::small();
    config.validate_each_step = false;
    config.max_time = Nanos::from_ms(5);
    let mut m = Machine::build(config).unwrap();
    m.set_program(
        0,
        LockWorker::new(
            LockDiscipline::Spin,
            VirtAddr::new(0x1000),
            VirtAddr::new(0x2000),
            1,
            Nanos::from_us(1),
            Nanos::ZERO,
        ),
    )
    .unwrap();
    m.install_fault_hook(FaultPlan::broken(1));
    match m.run() {
        Err(MachineError::TimeLimit { .. }) => {}
        other => panic!("expected the time limit, got {other:?}"),
    }
}
