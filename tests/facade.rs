//! Cross-crate integration through the facade: the analytic models, the
//! trace-driven cache simulator and the full machine must tell one
//! consistent story.

use vmp::analytic::{processor_performance, MissCostModel, ProcessorModel};
use vmp::cache::{CacheConfig, TagCache};
use vmp::machine::{Machine, MachineConfig, Op, ScriptProgram, TraceProgram};
use vmp::trace::synth::{AtumParams, AtumWorkload};
use vmp::trace::Trace;
use vmp::types::{Asid, Nanos, PageSize, VirtAddr};

#[test]
fn machine_miss_cost_matches_analytic_model() {
    // One clean conflict miss on the machine should cost what the
    // Table 1 model says, within arbitration slack.
    let page = PageSize::S256;
    let run = |ops: Vec<Op>| {
        let config = MachineConfig {
            processors: 1,
            cache: CacheConfig::new(page, 1, page.bytes() * 2).unwrap(),
            memory_bytes: 64 * 1024,
            ..MachineConfig::default()
        };
        let mut m = Machine::build(config).unwrap();
        m.set_program(0, ScriptProgram::new(ops)).unwrap();
        m.run().unwrap();
        m.cpu_stats(0).stall_time
    };
    let a = VirtAddr::new(page.bytes());
    let b = VirtAddr::new(page.bytes() * 3);
    let base = run(vec![Op::Read(a), Op::Read(b), Op::Halt]);
    let full = run(vec![Op::Read(a), Op::Read(b), Op::Read(a), Op::Halt]);
    let measured = full - base;
    let model = MissCostModel::paper(page).elapsed(false);
    let diff = measured.as_ns().abs_diff(model.as_ns());
    assert!(diff < 1_000, "machine {measured} vs model {model} differ by more than 1 us");
}

#[test]
fn machine_and_tag_cache_agree_on_miss_ratio() {
    // The full machine replaying a trace should see a miss ratio close
    // to the tag-only simulator's (the machine adds PTE-page traffic, so
    // it may run slightly higher).
    let trace: Trace = AtumWorkload::new(AtumParams::default(), 7).take(30_000).collect();
    let config = CacheConfig::new(PageSize::S256, 4, 128 * 1024).unwrap();
    let mut tag = TagCache::new(config);
    // The machine runs everything in one address space; mirror that in
    // the tag simulation for a like-for-like comparison.
    let tag_stats = tag.run(trace.iter().map(|r| {
        let mut r = *r;
        r.asid = Asid::new(1);
        r
    }));

    let mut mconfig = MachineConfig {
        processors: 1,
        cache: config,
        memory_bytes: 2 * 1024 * 1024,
        ..MachineConfig::default()
    };
    mconfig.cpu.page_fault = Nanos::ZERO;
    let mut m = Machine::build(mconfig).unwrap();
    m.set_program(0, TraceProgram::new(trace.clone())).unwrap();
    let report = m.run().unwrap();
    let machine_ratio = report.processors[0].miss_ratio();
    let tag_ratio = tag_stats.miss_ratio();
    assert!(
        machine_ratio >= tag_ratio * 0.8 && machine_ratio <= tag_ratio * 2.0,
        "machine {machine_ratio} vs tag {tag_ratio}"
    );
    m.validate().unwrap();
}

#[test]
fn measured_performance_tracks_figure3_model() {
    // Run the machine on a trace, then feed its *measured* miss ratio
    // into the Figure 3 formula: the machine's measured performance
    // should land near the model's prediction.
    let trace: Trace = AtumWorkload::new(AtumParams::default(), 11).take(40_000).collect();
    let mut config =
        MachineConfig { processors: 1, memory_bytes: 2 * 1024 * 1024, ..MachineConfig::default() };
    config.cpu.page_fault = Nanos::ZERO; // the model does not price page faults
    let mut m = Machine::build(config).unwrap();
    m.set_program(0, TraceProgram::new(trace)).unwrap();
    let report = m.run().unwrap();
    let stats = &report.processors[0];
    // Use the machine's real per-miss stall, which includes PTE traffic.
    let events = stats.misses() + stats.upgrades;
    let per_miss = stats.stall_time / events.max(1);
    let predicted = processor_performance(
        events as f64 / stats.refs as f64,
        per_miss,
        &ProcessorModel::default(),
    );
    let measured = stats.performance();
    assert!(
        (measured - predicted).abs() < 0.08,
        "measured {measured:.3} vs Figure-3 formula {predicted:.3}"
    );
}

#[test]
fn facade_reexports_are_coherent() {
    // The facade's type aliases refer to the same types as the member
    // crates (compile-time identity check by using them together).
    let page: vmp::types::PageSize = PageSize::S128;
    let config = vmp::cache::CacheConfig::new(page, 2, 4096).unwrap();
    let _tags = vmp::cache::TagArray::new(config);
    let timings = vmp::mem::MemTimings::default();
    assert_eq!(timings.page_transfer(page).as_micros_f64(), 3.4);
    let mva = vmp::analytic::mva(2, Nanos::from_us(8), Nanos::from_us(72));
    assert!(mva.bus_utilization > 0.0);
}
