//! End-to-end contention attribution through the facade: on the
//! contended 4-processor workload the lock page must surface as the
//! number-one hot page with a ping-pong verdict, the metrics document
//! must embed a consistent attribution section, and the cross-run
//! compare gate must pass on identical runs and fail on regressions.

use vmp::machine::workloads::{LockDiscipline, LockWorker, SweepWorker};
use vmp::machine::{Machine, MachineConfig, ObsConfig};
use vmp::obs::compare::{compare_metrics, CompareThresholds};
use vmp::obs::json::parse;
use vmp::obs::{metrics_json, SharingVerdict, TxClass};
use vmp::types::{Nanos, VirtAddr, VirtPageNum};

/// Four processors: two fighting over a spin lock, two false-sharing a
/// pair of pages (one writer per interleaved word).
fn contended_machine(obs: ObsConfig) -> Machine {
    let mut config = MachineConfig::small();
    config.processors = 4;
    config.validate_each_step = false;
    config.max_time = Nanos::from_ms(60_000);
    config.obs = obs;
    let page = config.cache.page_size().bytes();
    let mut m = Machine::build(config).unwrap();
    for cpu in 0..2 {
        m.set_program(
            cpu,
            LockWorker::new(
                LockDiscipline::Spin,
                VirtAddr::new(0x1000),
                VirtAddr::new(0x2000),
                16,
                Nanos::from_us(2),
                Nanos::from_us(3),
            ),
        )
        .unwrap();
    }
    for cpu in 2..4 {
        let offset = 4 * (cpu as u64 - 2);
        m.set_program(
            cpu,
            SweepWorker::new(VirtAddr::new(0x4000 + offset), 2 * page / 8, 8, 3, true),
        )
        .unwrap();
    }
    m
}

#[test]
fn lock_page_is_the_top_hot_page_with_a_ping_pong_verdict() {
    let mut m = contended_machine(ObsConfig::with_attrib());
    let page_bytes = m.page_size().bytes();
    m.run().unwrap();
    let attrib = m.obs().and_then(|o| o.attrib()).expect("attribution is enabled");

    let top = attrib.top_by_traffic(5);
    assert!(!top.is_empty());
    let (key, lock) = &top[0];
    assert_eq!(
        key.vpn,
        VirtPageNum::new(0x1000 / page_bytes),
        "the spin lock's page must be the hottest"
    );
    assert!(lock.traffic() > 0);
    // The §5.4 signature: the lock page bounces between the two
    // fighters and the bouncing is real program sharing.
    assert!(lock.transfers() > 2, "the lock page must change owners repeatedly");
    assert!(lock.episodes() > 0, "the lock page must ping-pong");
    assert_eq!(lock.verdict(), SharingVerdict::TrueSharing);
    // Both fighters contribute; the sweepers never touch the lock.
    assert!(lock.cpu_traffic(0) > 0 && lock.cpu_traffic(1) > 0);
    assert_eq!(lock.cpu_traffic(2) + lock.cpu_traffic(3), 0);

    // The false-sharing pair shows up too, classified as such.
    let false_page = attrib
        .pages()
        .find(|(k, _)| k.vpn == VirtPageNum::new(0x4000 / page_bytes))
        .map(|(_, p)| p)
        .expect("the sweepers' page has activity");
    assert_eq!(false_page.verdict(), SharingVerdict::FalseSharing);
}

#[test]
fn attribution_counts_reconcile_with_the_bus() {
    let mut m = contended_machine(ObsConfig::with_attrib());
    let report = m.run().unwrap();
    let attrib = m.obs().and_then(|o| o.attrib()).expect("attribution is enabled");
    for class in TxClass::ALL {
        assert_eq!(attrib.class_total(class), report.bus.count(class.kind()), "{}", class.label());
        assert_eq!(attrib.unattributed(class), 0);
    }
    let summary = attrib.summary();
    assert_eq!(
        summary.bounces,
        summary.true_bounces + summary.false_bounces + summary.unknown_bounces,
        "every bounce is classified exactly once"
    );
    assert!(summary.episodes > 0 && summary.transfers >= summary.bounces);
}

#[test]
fn metrics_document_embeds_attribution() {
    let mut m = contended_machine(ObsConfig::with_attrib());
    let report = m.run().unwrap();
    let obs = m.obs().expect("recording is enabled");
    let attrib = obs.attrib().unwrap();
    let doc = parse(&metrics_json(obs, report.elapsed).to_string()).unwrap();

    let a = doc.get("attrib").expect("attribution section present");
    let summary = a.get("summary").unwrap();
    assert_eq!(summary.get("pages").unwrap().as_u64(), Some(attrib.page_count() as u64));
    assert_eq!(
        summary.get("ping_pong_episodes").unwrap().as_u64(),
        Some(attrib.summary().episodes)
    );
    let pages = a.get("pages").unwrap().as_arr().unwrap();
    assert!(!pages.is_empty());
    // Pages are ranked hottest-first and each carries a verdict.
    let mut last = u64::MAX;
    for p in pages {
        let traffic = p.get("traffic").unwrap().as_u64().unwrap();
        assert!(traffic <= last, "pages must be sorted by traffic");
        last = traffic;
        assert!(p.get("verdict").unwrap().as_str().is_some());
        assert_eq!(p.get("cpus").unwrap().as_arr().unwrap().len(), 4);
    }

    // A recording-only run embeds no attribution section.
    let mut plain = contended_machine(ObsConfig::on());
    let report = plain.run().unwrap();
    let doc = parse(&metrics_json(plain.obs().unwrap(), report.elapsed).to_string()).unwrap();
    assert!(doc.get("attrib").is_none());
}

#[test]
fn compare_gate_passes_identical_runs_and_fails_regressions() {
    let doc_of = || {
        let mut m = contended_machine(ObsConfig::with_attrib());
        let report = m.run().unwrap();
        let text = metrics_json(m.obs().unwrap(), report.elapsed).set("report", report.to_json());
        parse(&text.to_string()).unwrap()
    };
    let base = doc_of();
    let same = doc_of();
    let out = compare_metrics(&base, &same, &CompareThresholds::default()).unwrap();
    assert!(out.passed(), "identical deterministic runs must pass the gate: {:?}", out.checks);
    assert_eq!(out.checks.len(), 5, "all five metrics must be present and checked");
    for c in &out.checks {
        assert_eq!(c.change, 0.0, "{} must not drift between identical runs", c.metric);
    }

    // A doctored 'current' document with doubled latency and ping-pong
    // count must fail, and the exit path is driven by regressions().
    let worse = {
        let text = same.to_string();
        // The deterministic document renders these integers uniquely,
        // so a textual doubling is a precise perturbation.
        let p99 = base
            .get("histograms")
            .and_then(|h| h.get("miss_service_ns"))
            .and_then(|m| m.get("p99_ns"))
            .and_then(|v| v.as_u64())
            .unwrap();
        let episodes = base
            .get("attrib")
            .and_then(|a| a.get("summary"))
            .and_then(|s| s.get("ping_pong_episodes"))
            .and_then(|v| v.as_u64())
            .unwrap();
        let doctored =
            text.replace(&format!("\"p99_ns\":{p99}"), &format!("\"p99_ns\":{}", p99 * 2)).replace(
                &format!("\"ping_pong_episodes\":{episodes}"),
                &format!("\"ping_pong_episodes\":{}", episodes * 10 + 100),
            );
        parse(&doctored).unwrap()
    };
    let out = compare_metrics(&base, &worse, &CompareThresholds::default()).unwrap();
    assert!(!out.passed());
    assert!(out.regressions() >= 2, "p99 and ping-pong must both regress");
}

#[test]
fn attribution_is_transparent_to_the_run() {
    let run = |obs: ObsConfig| {
        let mut m = contended_machine(obs);
        let report = m.run().unwrap();
        m.validate().unwrap();
        (
            report.elapsed,
            report.processors,
            report.faults,
            (report.bus.total(), report.bus.aborts, report.bus.busy.busy()),
        )
    };
    let off = run(ObsConfig::default());
    let on = run(ObsConfig::with_attrib());
    assert_eq!(off, on, "attribution-enabled runs must be bit-identical to disabled ones");
}
