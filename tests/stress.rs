//! Stress and equivalence scenarios across the whole stack.

use vmp::analytic::MigratorySharing;
use vmp::machine::workloads::{LockDiscipline, LockWorker};
use vmp::machine::{DmaRequest, Machine, MachineConfig, Op, ScriptProgram, TraceProgram};
use vmp::trace::synth::{AtumParams, AtumWorkload};
use vmp::types::{Asid, Nanos, PageSize, VirtAddr};

/// Running in one shot and running in many small `run_until` slices must
/// produce identical final state — the event loop has no hidden
/// wall-clock dependence.
#[test]
fn sliced_execution_equals_one_shot() {
    let build = || {
        let mut config = MachineConfig::small();
        config.processors = 2;
        config.validate_each_step = false;
        let mut m = Machine::build(config).unwrap();
        let lock = VirtAddr::new(0x1000);
        let counter = VirtAddr::new(0x2000);
        for cpu in 0..2 {
            m.set_program(
                cpu,
                LockWorker::new(
                    LockDiscipline::Spin,
                    lock,
                    counter,
                    8,
                    Nanos::from_us(2),
                    Nanos::from_us(1),
                ),
            )
            .unwrap();
        }
        m
    };
    let mut one_shot = build();
    let r1 = one_shot.run().unwrap();

    let mut sliced = build();
    let mut deadline = Nanos::from_us(50);
    loop {
        sliced.run_until(deadline).unwrap();
        deadline += Nanos::from_us(50);
        if deadline > r1.elapsed + Nanos::from_ms(1) {
            break;
        }
    }
    let r2 = sliced.run().unwrap();
    assert_eq!(r1.elapsed, r2.elapsed);
    assert_eq!(r1.processors, r2.processors);
    assert_eq!(
        one_shot.peek_word(Asid::new(1), VirtAddr::new(0x2000)),
        sliced.peek_word(Asid::new(1), VirtAddr::new(0x2000))
    );
}

/// DMA, locks and trace playback all at once, with invariants checked.
#[test]
fn dma_locks_and_traces_coexist() {
    let mut config = MachineConfig {
        processors: 3,
        memory_bytes: 2 * 1024 * 1024,
        max_time: Nanos::from_ms(60_000),
        ..MachineConfig::default()
    };
    config.cpu.page_fault = Nanos::from_us(5);
    let mut m = Machine::build(config).unwrap();

    // CPU 0 streams a trace in its own space.
    m.set_asid(0, Asid::new(7)).unwrap();
    let refs = AtumWorkload::new(AtumParams::default(), 13).take(10_000).map(|mut r| {
        r.asid = Asid::new(7);
        r
    });
    m.set_program(0, TraceProgram::new(refs)).unwrap();

    // CPUs 1 and 2 fight over a locked counter.
    let lock = VirtAddr::new(0x1000);
    let counter = VirtAddr::new(0x2000);
    for cpu in 1..3 {
        m.set_program(
            cpu,
            LockWorker::new(
                LockDiscipline::Notify,
                lock,
                counter,
                12,
                Nanos::from_us(4),
                Nanos::from_us(2),
            ),
        )
        .unwrap();
    }

    // A device captures the counter page mid-run (managed by CPU 0's
    // board; the §3.3 sequence serializes against the lock holders).
    let buf = VirtAddr::new(0x8000);
    m.map_shared(&[(Asid::new(1), buf)]).unwrap();
    let frame = m.frame_of(Asid::new(1), buf).unwrap();
    let page = m.page_size().bytes() as usize;
    let dma_in = m.queue_dma(0, DmaRequest::to_memory(vec![frame], vec![0x5a; page])).unwrap();
    let dma_out = m.queue_dma(0, DmaRequest::from_memory(vec![frame])).unwrap();

    m.run().unwrap();
    assert_eq!(m.peek_word(Asid::new(1), counter), Some(24));
    assert!(m.dma_result(dma_in).is_none(), "to-memory requests expose no buffer");
    let captured = m.dma_result(dma_out).expect("dma completed");
    assert!(captured.iter().all(|&b| b == 0x5a), "second DMA sees the first's bytes");
    m.validate().unwrap();
}

/// The measured cost of pure lock ping-pong tracks the analytic
/// migratory-sharing model within a small factor.
#[test]
fn contention_tracks_migratory_model() {
    let mut config = MachineConfig::small();
    config.processors = 2;
    config.validate_each_step = false;
    config.max_time = Nanos::from_ms(60_000);
    let page = config.cache.page_size();
    let mut m = Machine::build(config).unwrap();
    let word = VirtAddr::new(0x4000);
    // Pure ping-pong: each CPU alternates writes to one word with enough
    // think time that turns strictly alternate.
    let rounds = 50u32;
    for cpu in 0..2 {
        let ops: Vec<Op> = (0..rounds)
            .flat_map(|i| [Op::Write(word, i), Op::Compute(Nanos::from_us(60))])
            .chain([Op::Halt])
            .collect();
        m.set_program(cpu, ScriptProgram::new(ops)).unwrap();
    }
    let report = m.run().unwrap();
    let model = MigratorySharing::paper(page).migration();
    // Each write (beyond warm-up) migrates ownership: compare measured
    // write-back + fetch bus time against the model's 2-transfer figure.
    let migrations: u64 = report.processors.iter().map(|p| p.write_misses).sum();
    assert!(migrations >= 60, "expected steady ping-pong, got {migrations}");
    let measured_bus_per_migration = report.bus.busy.busy().as_ns() as f64 / migrations as f64;
    let predicted = model.bus.as_ns() as f64;
    let ratio = measured_bus_per_migration / predicted;
    assert!(
        (0.5..=2.0).contains(&ratio),
        "bus per migration {measured_bus_per_migration} ns vs model {predicted} ns"
    );
    m.validate().unwrap();
}

/// Sixteen processors: far past the paper's five-CPU design point, the
/// machine still completes and the bus saturates rather than anything
/// breaking.
#[test]
fn sixteen_processors_saturate_gracefully() {
    let mut config = MachineConfig {
        processors: 16,
        memory_bytes: 8 * 1024 * 1024,
        max_time: Nanos::from_ms(120_000),
        ..MachineConfig::default()
    };
    config.cpu.page_fault = Nanos::ZERO;
    let mut m = Machine::build(config).unwrap();
    for cpu in 0..16 {
        let asid = Asid::new(cpu as u8 + 1);
        m.set_asid(cpu, asid).unwrap();
        let refs =
            AtumWorkload::new(AtumParams::default(), cpu as u64).take(4_000).map(move |mut r| {
                r.asid = asid;
                r
            });
        m.set_program(cpu, TraceProgram::new(refs)).unwrap();
    }
    let report = m.run().unwrap();
    assert!(report.bus_utilization() > 0.5, "bus should be the bottleneck");
    assert_eq!(report.total_refs(), 16 * 4_000);
    m.validate().unwrap();
    let _ = PageSize::S256; // silence unused import on some cfgs
}
