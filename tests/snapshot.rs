//! Snapshot/resume through the facade: mid-flight captures under fault
//! injection must resume to the exact state — oracle-identical memory
//! and a bit-identical `MachineReport` — the uninterrupted run reaches,
//! and the committed golden corpus must stay loadable and resumable.

use vmp::faults::{FaultPlan, FaultRates};
use vmp::machine::workloads::{LockDiscipline, LockWorker, SweepWorker};
use vmp::machine::{Machine, MachineConfig, MachineSnapshot, Program, WatchdogConfig};
use vmp::types::{Asid, Nanos, VirtAddr};

fn config() -> MachineConfig {
    let mut config = MachineConfig::small();
    config.validate_each_step = false;
    config.audit_every = Some(64);
    config.watchdog = Some(WatchdogConfig::default());
    config.max_time = Nanos::from_ms(60_000);
    config
}

/// Fresh programs for the contended mix: two spin-lock fighters plus two
/// false-sharing sweepers — every consistency-protocol path stays hot.
fn programs(page: u64) -> Vec<Box<dyn Program>> {
    let mut out: Vec<Box<dyn Program>> = Vec::new();
    for _ in 0..2 {
        out.push(Box::new(LockWorker::new(
            LockDiscipline::Spin,
            VirtAddr::new(0x1000),
            VirtAddr::new(0x2000),
            8,
            Nanos::from_us(2),
            Nanos::from_us(3),
        )));
    }
    out.push(Box::new(SweepWorker::new(VirtAddr::new(0x4000), 2 * page / 8, 8, 3, true)));
    out.push(Box::new(SweepWorker::new(VirtAddr::new(0x4004), 2 * page / 8, 8, 3, true)));
    out
}

fn build(faulted: bool) -> Machine {
    let mut config = config();
    config.processors = 4;
    let page = config.cache.page_size().bytes();
    let mut m = Machine::build(config).unwrap();
    for (cpu, p) in programs(page).into_iter().enumerate() {
        m.set_program_boxed(cpu, p).unwrap();
    }
    if faulted {
        m.install_fault_hook(FaultPlan::new(21, FaultRates::heavy()));
    }
    m
}

fn probes(m: &Machine) -> Vec<Option<u32>> {
    [0x1000u64, 0x2000, 0x4000, 0x4004, 0x4040, 0x4044, 0x40f8, 0x40fc]
        .iter()
        .map(|&a| m.peek_word(Asid::new(1), VirtAddr::new(a)))
        .collect()
}

/// The tentpole contract, end to end under heavy injected faults: run
/// halfway (faults pending, FIFO words queued, locks contended),
/// snapshot, resume in a fresh machine, finish — and land on exactly the
/// oracle memory and a bit-identical report.
#[test]
fn mid_flight_snapshot_under_faults_resumes_exactly() {
    // The uninterrupted faulted run is the reference…
    let mut reference = build(true);
    let want_report = reference.run().unwrap();
    reference.validate().unwrap();
    let want_probes = probes(&reference);

    // …and the zero-fault oracle pins the memory words themselves.
    let mut oracle = build(false);
    oracle.run().unwrap();
    assert_eq!(probes(&oracle), want_probes, "faults must never change final memory");

    // Interrupt the same faulted run mid-flight.
    let mut m = build(true);
    m.run_until(Nanos::from_us(want_report.elapsed.as_ns() / 2000)).unwrap();
    let snap = m.snapshot().unwrap();
    assert!(m.fault_stats().total() > 0, "the cut must land with faults already injected");
    drop(m);

    // Resume from the serialized bytes in a brand-new machine.
    let snap = MachineSnapshot::from_bytes(&snap.to_bytes()).unwrap();
    let mut cfg = config();
    cfg.processors = 4;
    let page = cfg.cache.page_size().bytes();
    let fresh = programs(page).into_iter().map(Some).collect();
    let hook = Some(Box::new(FaultPlan::new(21, FaultRates::heavy())) as _);
    let mut m = Machine::resume(cfg, &snap, fresh, hook).unwrap();
    let report = m.run().unwrap();
    m.validate().unwrap();

    assert_eq!(
        report.to_json().to_string(),
        want_report.to_json().to_string(),
        "resumed report must be bit-identical to the uninterrupted run"
    );
    assert_eq!(probes(&m), want_probes, "resumed memory must match the oracle");
}

/// A doctored snapshot is distinguishable and `diff` names the field —
/// the debugging loop the `state-diff` subcommand exposes.
#[test]
fn diff_pinpoints_doctored_state() {
    let mut m = build(true);
    m.run_until(Nanos::from_us(300)).unwrap();
    let a = m.snapshot().unwrap();
    m.run_until(Nanos::from_us(600)).unwrap();
    let b = m.snapshot().unwrap();
    let d = MachineSnapshot::diff(&a, &b).expect("states at different times must differ");
    assert!(d.starts_with("$."), "diff must print a header path, got: {d}");
    assert_eq!(MachineSnapshot::diff(&a, &a), None);
    assert_eq!(MachineSnapshot::diff(&b, &b), None);
}

/// Every committed golden snapshot must load, carry its metadata, and
/// decode as the version this build writes. (CI additionally
/// byte-compares a regeneration against the corpus; this test keeps the
/// corpus at least *readable* wherever the tests run.)
#[test]
fn golden_corpus_loads() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/golden");
    let mut seen = 0;
    for entry in std::fs::read_dir(dir).expect("golden/ exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("vmpsnap") {
            continue;
        }
        seen += 1;
        let snap =
            MachineSnapshot::load(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let meta = snap.meta().unwrap_or_else(|| panic!("{}: no metadata", path.display()));
        assert!(meta.get("workload").is_some(), "{}: untagged", path.display());
        // Round-trip: the loaded container re-serializes to the file's bytes.
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(snap.to_bytes(), bytes, "{}: container not byte-stable", path.display());
    }
    assert!(seen >= 6, "golden corpus has shrunk: {seen} snapshots");
}
