//! End-to-end observability through the facade: a contended
//! multiprocessor run must export a valid Chrome trace timeline and a
//! schema-stable metrics document, wrapped rings must count their
//! drops, and enabling recording must not move a single statistic.

use vmp::machine::workloads::{LockDiscipline, LockWorker, SweepWorker};
use vmp::machine::{Machine, MachineConfig, ObsConfig};
use vmp::obs::json::{parse, Value};
use vmp::obs::{chrome_trace, metrics_json};
use vmp::types::{Nanos, VirtAddr};

/// Four processors: two fighting over a spin lock, two false-sharing a
/// pair of pages — every event class shows up on the recorded tracks.
fn contended_machine(obs: ObsConfig) -> Machine {
    let mut config = MachineConfig::small();
    config.processors = 4;
    config.validate_each_step = false;
    config.max_time = Nanos::from_ms(60_000);
    config.obs = obs;
    let page = config.cache.page_size().bytes();
    let mut m = Machine::build(config).unwrap();
    for cpu in 0..2 {
        m.set_program(
            cpu,
            LockWorker::new(
                LockDiscipline::Spin,
                VirtAddr::new(0x1000),
                VirtAddr::new(0x2000),
                12,
                Nanos::from_us(2),
                Nanos::from_us(3),
            ),
        )
        .unwrap();
    }
    for cpu in 2..4 {
        let offset = 4 * (cpu as u64 - 2);
        m.set_program(
            cpu,
            SweepWorker::new(VirtAddr::new(0x4000 + offset), 2 * page / 8, 8, 3, true),
        )
        .unwrap();
    }
    m
}

#[test]
fn timeline_is_a_valid_chrome_trace() {
    let mut m = contended_machine(ObsConfig::on());
    m.run().unwrap();
    let obs = m.obs().expect("recording is enabled");
    let doc = parse(&chrome_trace(obs).to_string()).expect("timeline must be valid JSON");

    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    assert!(events.len() > 100, "a contended run must record plenty of events");

    // One named track per processor plus one for the bus.
    let tracks: Vec<&str> = events
        .iter()
        .filter(|e| e.get("name").unwrap().as_str() == Some("thread_name"))
        .map(|e| e.get("args").unwrap().get("name").unwrap().as_str().unwrap())
        .collect();
    assert_eq!(tracks, vec!["cpu0", "cpu1", "cpu2", "cpu3", "bus"]);

    // Every event is well-formed; span delimiters balance per track.
    let mut depth = [0i64; 5];
    for e in events {
        let ph = e.get("ph").unwrap().as_str().unwrap();
        let tid = e.get("tid").unwrap().as_u64().unwrap() as usize;
        assert!(tid < 5);
        match ph {
            "B" => depth[tid] += 1,
            "E" => {
                depth[tid] -= 1;
                assert!(depth[tid] >= 0, "E without matching B on tid {tid}");
            }
            "X" => assert!(e.get("dur").unwrap().as_f64().unwrap() >= 0.0),
            "i" => assert_eq!(e.get("s").unwrap().as_str(), Some("t")),
            "M" => continue,
            other => panic!("unexpected phase {other:?}"),
        }
        assert!(e.get("ts").unwrap().as_f64().unwrap() >= 0.0);
    }
    assert_eq!(depth, [0; 5], "every span must close");

    // The bus track carries transactions; the CPU tracks carry misses.
    assert!(events.iter().any(|e| e.get("cat").map(Value::as_str) == Some(Some("bus"))));
    assert!(events.iter().any(|e| e.get("name").map(Value::as_str) == Some(Some("miss(read)"))));
    assert_eq!(doc.get("otherData").unwrap().get("dropped_events").unwrap().as_u64(), Some(0));
}

#[test]
fn metrics_document_is_schema_stable() {
    let mut m = contended_machine(ObsConfig::on());
    let report = m.run().unwrap();
    let obs = m.obs().expect("recording is enabled");
    let text = metrics_json(obs, report.elapsed).set("report", report.to_json()).to_string();
    let doc = parse(&text).expect("metrics must be valid JSON");

    assert_eq!(doc.get("elapsed_ns").unwrap().as_u64(), Some(report.elapsed.as_ns()));
    let h = doc.get("histograms").unwrap();
    for key in ["miss_service_ns", "irq_latency_ns", "arb_wait_ns"] {
        let hist = h.get(key).unwrap();
        assert!(hist.get("count").unwrap().as_u64().unwrap() > 0, "{key} must be populated");
        assert!(hist.get("mean_ns").is_some() && hist.get("p99_ns").is_some());
        for b in hist.get("buckets").unwrap().as_arr().unwrap() {
            assert!(b.get("lo_ns").unwrap().as_u64() < b.get("hi_ns").unwrap().as_u64());
        }
    }
    assert_eq!(doc.get("processors").unwrap().as_arr().unwrap().len(), 4);
    assert!(!doc.get("bus_utilization").unwrap().as_arr().unwrap().is_empty());

    // The embedded machine report agrees with the live statistics.
    let r = doc.get("report").unwrap();
    assert_eq!(r.get("total_refs").unwrap().as_u64(), Some(report.total_refs()));
    let cpu0 = &r.get("processors").unwrap().as_arr().unwrap()[0];
    assert_eq!(cpu0.get("refs").unwrap().as_u64(), Some(report.processors[0].refs));
}

#[test]
fn tiny_rings_wrap_and_count_drops() {
    let obs_config = ObsConfig { ring_capacity: 16, ..ObsConfig::on() };
    let mut m = contended_machine(obs_config);
    m.run().unwrap();
    let obs = m.obs().expect("recording is enabled");
    assert!(obs.total_dropped() > 0, "a 16-event ring must wrap on this workload");
    for cpu in 0..4 {
        assert!(obs.cpu_recorded(cpu) <= 16);
    }
    assert!(obs.bus_recorded() <= 16);
    // The exporter surfaces the loss instead of hiding it.
    let doc = parse(&chrome_trace(obs).to_string()).unwrap();
    assert_eq!(
        doc.get("otherData").unwrap().get("dropped_events").unwrap().as_u64(),
        Some(obs.total_dropped())
    );
}

#[test]
fn recording_is_transparent_to_the_run() {
    let run = |obs: ObsConfig| {
        let mut m = contended_machine(obs);
        let report = m.run().unwrap();
        m.validate().unwrap();
        (
            report.elapsed,
            report.processors,
            report.faults,
            (report.bus.total(), report.bus.aborts, report.bus.busy.busy()),
        )
    };
    let off = run(ObsConfig::default());
    let on = run(ObsConfig::on());
    assert_eq!(off.0, on.0, "elapsed time must be identical");
    assert_eq!(off.1, on.1, "processor statistics must be identical");
    assert_eq!(off.2, on.2, "fault accounting must be identical");
    assert_eq!(off.3, on.3, "bus statistics must be identical");
}
