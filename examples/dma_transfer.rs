//! DMA under software consistency control (§3.3): an unmodified VME
//! device transfers into and out of memory while processors cache the
//! same frames.
//!
//! ```sh
//! cargo run --example dma_transfer
//! ```

use vmp::machine::{DmaRequest, Machine, MachineConfig, Op, ScriptProgram};
use vmp::types::{Asid, VirtAddr};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut machine = Machine::build(MachineConfig::small())?;
    let asid = Asid::new(1);
    let buf = VirtAddr::new(0x4000);

    // CPU 0 fills a buffer page and keeps it dirty in its cache.
    machine.set_program(
        0,
        ScriptProgram::new([
            Op::Write(buf, 0xaabb_ccdd),
            Op::Write(buf.add(4), 0x1122_3344),
            Op::Halt,
        ]),
    )?;
    machine.run()?;
    let frame = machine.frame_of(asid, buf).expect("buffer mapped");
    println!("buffer frame: {frame}; CPU 0 holds it modified in its cache");

    // An Ethernet-style device reads the frame, managed by CPU 1. The
    // §3.3 sequence (assert-ownership + protect) forces CPU 0's dirty
    // copy back to memory before the device sees it.
    let handle = machine.queue_dma(1, DmaRequest::from_memory(vec![frame]))?;
    machine.run()?;
    let data = machine.dma_result(handle).expect("transfer complete");
    println!(
        "device read: {:#010x} {:#010x} (CPU 0's writes, flushed by assert-ownership)",
        u32::from_le_bytes(data[0..4].try_into().unwrap()),
        u32::from_le_bytes(data[4..8].try_into().unwrap()),
    );
    assert_eq!(&data[0..4], &0xaabb_ccddu32.to_le_bytes());

    // Now the device writes fresh data into the same frame; CPU 0's
    // cached copy was discarded during protection, so its next read
    // fetches the device's bytes.
    let page = machine.page_size().bytes() as usize;
    let mut incoming = vec![0u8; page];
    incoming[..4].copy_from_slice(&0x5566_7788u32.to_le_bytes());
    machine.queue_dma(1, DmaRequest::to_memory(vec![frame], incoming))?;
    machine.run()?;
    machine.set_program(0, ScriptProgram::new([Op::Read(buf), Op::Halt]))?;
    machine.run()?;
    let seen = machine.peek_word(asid, buf).unwrap();
    println!("CPU 0 re-reads buffer: {seen:#010x} (the device's data)");
    assert_eq!(seen, 0x5566_7788);
    machine.validate().expect("invariants hold");
    println!("protocol invariants: OK");
    Ok(())
}
