//! Quickstart: build a four-processor VMP machine, run a mixed workload
//! (trace playback + a lock-based parallel counter), and print the run
//! report.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use vmp::machine::workloads::{LockDiscipline, LockWorker};
use vmp::machine::{Machine, MachineConfig, TraceProgram};
use vmp::trace::synth::{AtumParams, AtumWorkload};
use vmp::types::{Asid, Nanos, VirtAddr};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The prototype machine: 4 × (68020 + 256 KB 4-way virtually
    // addressed cache + bus monitor) on one VMEbus.
    let mut config = MachineConfig::default();
    config.cpu.page_fault = Nanos::from_us(20); // light-weight demand-zero
    let mut machine = Machine::build(config)?;

    // CPUs 0 and 1 replay ATUM-like reference traces in their own
    // address spaces (ordinary multiprogrammed work).
    for cpu in 0..2 {
        let asid = Asid::new(10 + cpu as u8);
        machine.set_asid(cpu, asid)?;
        let refs = AtumWorkload::new(AtumParams::default(), 42 + cpu as u64).take(20_000).map(
            move |mut r| {
                r.asid = asid;
                r
            },
        );
        machine.set_program(cpu, TraceProgram::new(refs))?;
    }

    // CPUs 2 and 3 cooperate on a shared counter under a test-and-set
    // lock (they share address space 1, the default).
    let lock = VirtAddr::new(0x1000);
    let counter = VirtAddr::new(0x2000);
    for cpu in 2..4 {
        machine.set_program(
            cpu,
            LockWorker::new(
                LockDiscipline::Spin,
                lock,
                counter,
                50,
                Nanos::from_us(5),
                Nanos::from_us(10),
            ),
        )?;
    }

    let report = machine.run()?;
    println!("{report}");

    let total = machine.peek_word(Asid::new(1), counter).expect("counter mapped");
    println!("\nshared counter: {total} (expected 100 — mutual exclusion held)");
    machine.validate().expect("protocol invariants hold at quiescence");
    println!("protocol invariants: OK");
    Ok(())
}
