//! A phased parallel computation on the VMP machine: workers sweep
//! disjoint slices of a shared array and meet at a barrier between
//! phases — the bulk-synchronous shape of the parallel applications the
//! paper's introduction motivates. Prints per-worker statistics and the
//! parallel speedup over a single worker.
//!
//! ```sh
//! cargo run --release --example parallel_phases
//! ```

use vmp::machine::workloads::{BarrierWorker, SweepWorker};
use vmp::machine::{Machine, MachineConfig, Op, OpResult, Program};
use vmp::types::{Nanos, VirtAddr};

/// One worker: alternate a data-sweep phase with a barrier round.
struct PhasedWorker {
    sweep_template: (VirtAddr, u64),
    barrier: BarrierWorker,
    sweep: Option<SweepWorker>,
    phases: u64,
    done_phases: u64,
    in_sweep: bool,
}

impl PhasedWorker {
    fn new(slice_base: VirtAddr, slice_words: u64, barrier: BarrierWorker, phases: u64) -> Self {
        PhasedWorker {
            sweep_template: (slice_base, slice_words),
            barrier,
            sweep: None,
            phases,
            done_phases: 0,
            in_sweep: true,
        }
    }
}

impl Program for PhasedWorker {
    fn next_op(&mut self, last: OpResult) -> Op {
        loop {
            if self.done_phases >= self.phases {
                return Op::Halt;
            }
            if self.in_sweep {
                let (base, words) = self.sweep_template;
                let sweep =
                    self.sweep.get_or_insert_with(|| SweepWorker::new(base, words, 8, 1, true));
                match sweep.next_op(OpResult::None) {
                    Op::Halt => {
                        self.sweep = None;
                        self.in_sweep = false;
                    }
                    op => return op,
                }
            } else {
                match self.barrier.next_op(last) {
                    Op::Halt => unreachable!("barrier outlives the phases"),
                    op => {
                        // One barrier round completed? The barrier tracks it.
                        if self.barrier.completed_rounds() > self.done_phases {
                            self.done_phases = self.barrier.completed_rounds();
                            self.in_sweep = true;
                            continue;
                        }
                        return op;
                    }
                }
            }
        }
    }
}

fn run(workers: usize, phases: u64, total_words: u64) -> Nanos {
    let mut config = MachineConfig {
        processors: workers,
        max_time: Nanos::from_ms(60_000),
        ..MachineConfig::default()
    };
    config.cpu.page_fault = Nanos::from_us(5);
    let mut m = Machine::build(config).unwrap();
    let lock = VirtAddr::new(0x10_0000);
    let counter = VirtAddr::new(0x10_1000);
    let barrier = VirtAddr::new(0x10_2000);
    let slice = total_words / workers as u64;
    for w in 0..workers {
        let base = VirtAddr::new(0x20_0000 + w as u64 * slice * 8);
        let b = BarrierWorker::new(
            workers as u32,
            phases + 1, // barrier rounds outlive the phases by one
            lock,
            counter,
            barrier,
            Nanos::ZERO,
        );
        m.set_program(w, PhasedWorker::new(base, slice, b, phases)).unwrap();
    }
    let report = m.run().unwrap();
    m.validate().expect("invariants hold");
    print!("  {workers} worker(s): elapsed {:>10}", report.elapsed.to_string());
    println!(
        ", bus {:>5.1}%, irqs {}",
        100.0 * report.bus_utilization(),
        report.processors.iter().map(|p| p.consistency_interrupts).sum::<u64>()
    );
    report.elapsed
}

fn main() {
    let phases = 4;
    let total_words = 32 * 1024; // 128 KB of data per phase
    println!("{phases} phases over {total_words} shared words, barrier-synchronized:\n");
    let t1 = run(1, phases, total_words);
    let t2 = run(2, phases, total_words);
    let t4 = run(4, phases, total_words);
    println!(
        "\nspeedup: 2 workers {:.2}x, 4 workers {:.2}x",
        t1.as_ns() as f64 / t2.as_ns() as f64,
        t1.as_ns() as f64 / t4.as_ns() as f64,
    );
    println!("(sub-linear as the bus saturates — the §5.3 limit in application form)");
}
