//! Cache-geometry study: replay one synthetic ATUM-like trace through
//! the virtually-addressed cache at every prototype geometry — the
//! Figure 4 experiment in miniature.
//!
//! ```sh
//! cargo run --release --example cache_study
//! ```

use vmp::analytic::{processor_performance, render_table, MissCostModel, ProcessorModel};
use vmp::cache::{CacheConfig, TagCache};
use vmp::trace::synth::{AtumParams, AtumWorkload};
use vmp::trace::Trace;
use vmp::types::PageSize;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace: Trace = AtumWorkload::new(AtumParams::default(), 1986).take(200_000).collect();
    let stats = trace.stats();
    println!(
        "trace: {} refs, footprint {} KB, OS share {:.1}%\n",
        stats.total,
        stats.footprint_bytes() / 1024,
        100.0 * stats.supervisor_fraction()
    );

    let proc = ProcessorModel::default();
    let mut rows = Vec::new();
    for kb in [64u64, 128, 256] {
        for page in PageSize::PROTOTYPE_SIZES {
            let config = CacheConfig::new(page, 4, kb * 1024)?;
            let mut cache = TagCache::new(config);
            let s = cache.run(trace.iter().copied());
            // Chain into the paper's performance model (Figure 3).
            let avg = MissCostModel::paper(page).average(0.75);
            let perf = processor_performance(s.miss_ratio(), avg.elapsed, &proc);
            rows.push(vec![
                format!("{kb} KB"),
                page.to_string(),
                format!("{:.3}%", 100.0 * s.miss_ratio()),
                format!("{:.1}%", 100.0 * perf),
            ]);
        }
    }
    println!("{}", render_table(&["cache", "page", "miss ratio", "predicted cpu perf"], &rows));
    println!(
        "larger caches and larger pages both cut the miss ratio; the paper's\n\
         design point (256 B pages, 128-256 KB) keeps the software-handled\n\
         miss overhead in the 80-95% performance band."
    );
    Ok(())
}
