//! The §3.4 page-out daemon: reference-bit maintenance through
//! assert-ownership flushes, working-set estimation, and swap-backed
//! reclamation — with contents surviving a round trip through the
//! backing store.
//!
//! ```sh
//! cargo run --example pageout_daemon
//! ```

use vmp::machine::{Machine, MachineConfig, Op, ScriptProgram};
use vmp::types::{Asid, VirtAddr};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut machine = Machine::build(MachineConfig::small())?;
    let asid = Asid::new(1);

    // A process touches eight pages, writing a recognizable value into
    // each.
    let pages: Vec<VirtAddr> = (0..8).map(|i| VirtAddr::new(0x2000 + i * 0x1000)).collect();
    let ops: Vec<Op> = pages
        .iter()
        .enumerate()
        .map(|(i, &va)| Op::Write(va, 0xd000 + i as u32))
        .chain([Op::Halt])
        .collect();
    machine.set_program(0, ScriptProgram::new(ops))?;
    machine.run()?;
    println!(
        "process wrote {} pages; free frames: {}",
        pages.len(),
        machine.kernel().free_frames()
    );

    // Daemon pass 1: clear reference bits, flushing every page from every
    // cache with assert-ownership so future touches are observable.
    let referenced = machine.sweep_reference_bits(0, asid)?;
    println!("sweep 1: {referenced} pages had been referenced (bits cleared)");

    // The process keeps using only its first three pages.
    let ops: Vec<Op> = pages[..3].iter().map(|&va| Op::Read(va)).chain([Op::Halt]).collect();
    machine.set_program(0, ScriptProgram::new(ops))?;
    machine.run()?;

    // Daemon pass 2: everything still unreferenced goes to the backing
    // store and its frame is freed.
    let before = machine.kernel().free_frames();
    let reclaimed = machine.reclaim_unreferenced(0, asid)?;
    println!(
        "sweep 2: reclaimed {} cold pages ({} -> {} free frames)",
        reclaimed.len(),
        before,
        machine.kernel().free_frames()
    );
    assert_eq!(reclaimed.len(), 5);

    // Touching a reclaimed page takes a real page fault; the kernel
    // restores its contents from the backing store.
    let victim = pages[6];
    machine.set_program(0, ScriptProgram::new([Op::Read(victim), Op::Halt]))?;
    machine.run()?;
    let value = machine.peek_word(asid, victim).unwrap();
    println!(
        "re-touch of {victim}: page fault, contents restored = {value:#x} (expected {:#x})",
        0xd006
    );
    assert_eq!(value, 0xd006);
    machine.validate().expect("invariants hold");
    println!("protocol invariants: OK");
    Ok(())
}
