//! Lock-discipline comparison (§5.4): naive test-and-set spinning versus
//! bus-monitor notification locks, on the full machine.
//!
//! ```sh
//! cargo run --release --example lock_contention
//! ```

use vmp::machine::workloads::{LockDiscipline, LockWorker};
use vmp::machine::{Machine, MachineConfig};
use vmp::types::{Asid, Nanos, VirtAddr};

fn run(discipline: LockDiscipline, label: &str) -> Result<(), Box<dyn std::error::Error>> {
    let config = MachineConfig {
        processors: 4,
        max_time: Nanos::from_ms(60_000),
        ..MachineConfig::default()
    };
    let mut machine = Machine::build(config)?;
    let lock = VirtAddr::new(0x1000);
    let counter = VirtAddr::new(0x2000);
    for cpu in 0..4 {
        machine.set_program(
            cpu,
            LockWorker::new(discipline, lock, counter, 25, Nanos::from_us(10), Nanos::from_us(5)),
        )?;
    }
    let report = machine.run()?;
    let counter_value = machine.peek_word(Asid::new(1), counter).unwrap();
    let moves: u64 =
        report.processors.iter().map(|p| p.write_misses + p.upgrades + p.invalidations).sum();
    let irqs: u64 = report.processors.iter().map(|p| p.consistency_interrupts).sum();
    println!(
        "{label:9}: elapsed {:>10}, counter {} (expect 100), bus {:>5.1}%, \
         ownership moves {moves}, consistency irqs {irqs}, aborts {}",
        report.elapsed.to_string(),
        counter_value,
        100.0 * report.bus_utilization(),
        report.bus.aborts,
    );
    machine.validate().expect("invariants hold");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("four processors incrementing one shared counter 25 times each:\n");
    run(LockDiscipline::Spin, "tas-spin")?;
    run(LockDiscipline::Notify, "notify")?;
    println!(
        "\nthe spin discipline ping-pongs the lock page between caches on every\n\
         attempt (the 'enormous consistency overhead' of §5.4); notification\n\
         locks park waiters on action-table code 11 until the holder's notify."
    );
    Ok(())
}
