//! Lock-discipline comparison (§5.4): naive test-and-set spinning versus
//! bus-monitor notification locks, on the full machine — with contention
//! attribution switched on, so the lock page's ping-ponging is not just
//! asserted but *measured*.
//!
//! ```sh
//! cargo run --release --example lock_contention
//! ```

use vmp::machine::workloads::{LockDiscipline, LockWorker};
use vmp::machine::{Machine, MachineConfig};
use vmp::obs::{ObsConfig, TxClass};
use vmp::types::{Asid, Nanos, VirtAddr};

fn run(discipline: LockDiscipline, label: &str) -> Result<(), Box<dyn std::error::Error>> {
    let config = MachineConfig {
        processors: 4,
        max_time: Nanos::from_ms(60_000),
        obs: ObsConfig::with_attrib(),
        ..MachineConfig::default()
    };
    let page_bytes = config.cache.page_size().bytes();
    let mut machine = Machine::build(config)?;
    let lock = VirtAddr::new(0x1000);
    let counter = VirtAddr::new(0x2000);
    for cpu in 0..4 {
        machine.set_program(
            cpu,
            LockWorker::new(discipline, lock, counter, 25, Nanos::from_us(10), Nanos::from_us(5)),
        )?;
    }
    let report = machine.run()?;
    let counter_value = machine.peek_word(Asid::new(1), counter).unwrap();
    let moves: u64 =
        report.processors.iter().map(|p| p.write_misses + p.upgrades + p.invalidations).sum();
    let irqs: u64 = report.processors.iter().map(|p| p.consistency_interrupts).sum();
    println!(
        "{label:9}: elapsed {:>10}, counter {} (expect 100), bus {:>5.1}%, \
         ownership moves {moves}, consistency irqs {irqs}, aborts {}",
        report.elapsed.to_string(),
        counter_value,
        100.0 * report.bus_utilization(),
        report.bus.aborts,
    );

    // Who generated that traffic? The attribution table knows.
    let attrib = machine.obs().and_then(|o| o.attrib()).expect("attribution is enabled");
    println!("  top-5 hot pages by consistency-protocol traffic:");
    for (rank, (key, p)) in attrib.top_by_traffic(5).iter().enumerate() {
        println!(
            "    {}. asid {} page {:#7x}: {} txns \
             (rp {}, ao {}, wb {}), {} aborts, {} transfers, {} ping-pong episodes [{}]",
            rank + 1,
            key.asid.raw(),
            key.vpn.raw() * page_bytes,
            p.traffic(),
            p.count(TxClass::ReadPrivate),
            p.count(TxClass::AssertOwnership),
            p.count(TxClass::WriteBack),
            p.aborts(),
            p.transfers(),
            p.episodes(),
            p.verdict().label(),
        );
    }
    machine.validate().expect("invariants hold");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("four processors incrementing one shared counter 25 times each:\n");
    run(LockDiscipline::Spin, "tas-spin")?;
    run(LockDiscipline::Notify, "notify")?;
    println!(
        "\nthe spin discipline ping-pongs the lock page between caches on every\n\
         attempt (the 'enormous consistency overhead' of §5.4); notification\n\
         locks park waiters on action-table code 11 until the holder's notify.\n\
         the attribution table pins both disciplines' traffic on the lock and\n\
         counter pages and calls the bouncing what it is: true sharing."
    );
    Ok(())
}
