//! Virtual-address aliasing and translation consistency (§3.3–3.4): one
//! frame mapped at two virtual addresses, resolved by the bus monitor's
//! self-competition rule; then a §3.4 mapping change that flushes every
//! cache in the machine.
//!
//! ```sh
//! cargo run --example vm_aliasing
//! ```

use vmp::machine::{Machine, MachineConfig, Op, ScriptProgram};
use vmp::types::{Asid, Nanos, VirtAddr};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut machine = Machine::build(MachineConfig::small())?;
    let asid = Asid::new(1);
    let va1 = VirtAddr::new(0x5000);
    let va2 = VirtAddr::new(0x9000); // alias of the same frame

    let frame = machine.map_shared(&[(asid, va1), (asid, va2)])?;
    println!("frame {frame} mapped at both {va1} and {va2}");

    // Write through one name, read through the other. The read's
    // read-shared transaction is aborted by the CPU's *own* bus monitor
    // (it owns the frame via va1), forcing a write-back — then the retry
    // observes the written value.
    machine.set_program(
        0,
        ScriptProgram::new([Op::Write(va1, 0xdead_beef), Op::Read(va2), Op::Halt]),
    )?;
    machine.run()?;
    println!(
        "write via {va1}, read via {va2} -> {:#010x} (self-abort retries: {})",
        machine.peek_word(asid, va2).unwrap(),
        machine.cpu_stats(0).retries,
    );
    assert_eq!(machine.peek_word(asid, va2), Some(0xdead_beef));

    // §3.4 translation consistency: migrate va1 to a fresh frame. The
    // kernel takes the PTE page private, assert-ownerships the old frame
    // (flushing every cached copy machine-wide), and updates the table.
    let fresh = machine.map_shared(&[(Asid::new(9), VirtAddr::new(0x100))])?;
    let old = machine.change_mapping(0, asid, va1, fresh)?;
    println!("remapped {va1}: {old} -> {fresh}");
    machine.set_program(
        0,
        ScriptProgram::new([
            Op::Read(va1), // new frame: zero-filled
            Op::Compute(Nanos::from_us(1)),
            Op::Read(va2), // still the old frame: keeps the data
            Op::Halt,
        ]),
    )?;
    machine.run()?;
    println!(
        "after remap: {va1} reads {:#010x}, alias {va2} still reads {:#010x}",
        machine.peek_word(asid, va1).unwrap(),
        machine.peek_word(asid, va2).unwrap(),
    );
    assert_eq!(machine.peek_word(asid, va1), Some(0));
    assert_eq!(machine.peek_word(asid, va2), Some(0xdead_beef));
    machine.validate().expect("invariants hold");
    println!("protocol invariants: OK");
    Ok(())
}
